"""Pass-1 cross-TU program model for cdplint.

The per-file rules (PR 4) see one token stream at a time; the
semantic rule families (snapshot-completeness, include-layering,
lock-discipline) need whole-program facts: which class declares which
non-static data members, where every ``saveState``/``loadState`` (and
any other member-function) body lives — usually a different file from
the class — the ``#include`` graph, and which members are annotated
``transient``/``guarded_by``. This module builds that model once per
run, from the same lexed token streams the rules already get, so no
file is ever re-read or re-parsed per rule.

Everything here is a plain picklable dataclass: the parallel driver
(``--jobs``) forks workers after the model is built and they inherit
it read-only.

The parser is deliberately not a C++ front end. It understands the
repo's (enforced, clang-format'd) subset: namespaces, classes/structs
with nested types, access specifiers, member declarations with
default initializers, in-class method definitions, and out-of-line
``Cls::method(...) { ... }`` definitions. Exotic declarators
(function pointers spelled raw, multi-dimensional arrays of
templates) would be misparsed — and none exist in the tree, which the
self-test's real-source acceptance checks keep true.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from lexer import IDENT, PP, PUNCT, Comment, Token

# Identifiers that may decorate a declaration without being the
# declared name or part of the type proper.
_DECL_QUALIFIERS = {"const", "volatile", "constexpr", "inline",
                    "mutable", "explicit", "virtual", "typename"}

_ACCESS_SPECIFIERS = {"public", "private", "protected"}

_SKIP_STATEMENT_HEADS = {"using", "typedef", "friend", "static_assert",
                         "template", "operator"}

_MUTEX_TYPES = {"mutex", "recursive_mutex", "timed_mutex",
                "shared_mutex"}


@dataclass
class Member:
    name: str
    line: int
    col: int
    type_text: str
    is_static: bool = False


@dataclass
class ClassInfo:
    name: str                # qualified with outer classes: "A::B"
    path: str
    line: int                # line of the class-name token
    end_line: int            # line of the closing '}'
    members: List[Member] = field(default_factory=list)
    method_lines: Dict[str, int] = field(default_factory=dict)
    mutex_members: Set[str] = field(default_factory=set)

    def member(self, name: str) -> Optional[Member]:
        for m in self.members:
            if m.name == name:
                return m
        return None

    def data_members(self) -> List[Member]:
        return [m for m in self.members if not m.is_static]


@dataclass
class MethodBody:
    cls: str                 # class name as written ("Cache", "A::B")
    method: str
    path: str
    sig_line: int            # line the qualified/declared name is on
    body_lo: int             # token index of the opening '{'
    body_hi: int             # token index of the matching '}'


@dataclass
class IncludeEdge:
    path: str                # including file (repo-relative)
    line: int
    target: str              # quoted include text, e.g. "memsys/cache.hh"


@dataclass
class Annotation:
    # "transient" | "guarded_by" | "requires_lock" | "requires_quiesced"
    kind: str
    args: Tuple[str, ...]
    reason: str
    path: str
    comment_line: int
    target_line: int         # next code line for standalone comments


@dataclass
class EnumInfo:
    """One project enum definition (scoped or not), with its
    enumerators in declaration order. The exhaustive-switch rule
    treats every enum defined inside the lint run as a project enum."""
    name: str
    path: str
    line: int
    enumerators: List[str] = field(default_factory=list)
    scoped: bool = False     # enum class / enum struct


@dataclass
class ProgramModel:
    # class qualified name -> every definition seen (fixtures may
    # duplicate names across scratch trees; rules disambiguate by path)
    classes: Dict[str, List[ClassInfo]] = field(default_factory=dict)
    # path -> method bodies defined in that file (token indexes refer
    # to that file's own token stream)
    bodies: Dict[str, List[MethodBody]] = field(default_factory=dict)
    includes: Dict[str, List[IncludeEdge]] = field(default_factory=dict)
    annotations: Dict[str, List[Annotation]] = field(default_factory=dict)
    # enum name -> every definition seen (fixtures may shadow names)
    enums: Dict[str, List[EnumInfo]] = field(default_factory=dict)
    # path -> lexed code tokens, so a rule anchored in one file can
    # read a body that lives in another (the .hh/.cc pairing)
    streams: Dict[str, List[Token]] = field(default_factory=dict)

    # -- lookups ---------------------------------------------------------

    def classes_in(self, path: str) -> List[ClassInfo]:
        return [ci for lst in self.classes.values() for ci in lst
                if ci.path == path]

    def find_class(self, name: str) -> Optional[ClassInfo]:
        lst = self.classes.get(name)
        return lst[0] if lst else None

    def find_bodies(self, cls: str, method: str) -> List[MethodBody]:
        """Every definition of cls::method, across all files. ``cls``
        matches both the qualified and the unqualified spelling."""
        short = cls.rsplit("::", 1)[-1]
        out = []
        for path in sorted(self.bodies):
            for b in self.bodies[path]:
                if b.method != method:
                    continue
                bshort = b.cls.rsplit("::", 1)[-1]
                if b.cls == cls or bshort == short:
                    out.append(b)
        return out

    def find_enum(self, name: str,
                  near_path: Optional[str] = None
                  ) -> Optional[EnumInfo]:
        """Definition of enum ``name``; when several files define the
        same enum name (fixture trees), prefer the one sharing a
        directory prefix with ``near_path``."""
        lst = self.enums.get(name)
        if not lst:
            return None
        if near_path is not None and len(lst) > 1:
            near_dir = near_path.rsplit("/", 1)[0]
            for ei in lst:
                if ei.path.rsplit("/", 1)[0] == near_dir:
                    return ei
        return lst[0]

    def annotations_on(self, path: str, line: int) -> List[Annotation]:
        return [a for a in self.annotations.get(path, [])
                if a.target_line == line]

    def class_transients(self, ci: ClassInfo) -> Dict[str, Annotation]:
        """member name -> transient annotation, for annotations whose
        target line falls inside the class body."""
        out: Dict[str, Annotation] = {}
        for a in self.annotations.get(ci.path, []):
            if a.kind != "transient":
                continue
            if not (ci.line <= a.target_line <= ci.end_line):
                continue
            for name in a.args:
                out[name] = a
        return out


# ---------------------------------------------------------------------------
# Annotation comments
# ---------------------------------------------------------------------------

_ANNOT_RE = re.compile(
    r"cdplint:\s*(transient|guarded_by|requires_lock|"
    r"requires_quiesced)"
    r"\(\s*([\w, ]*?)\s*\)(?:\s*--\s*(.*))?\s*$")


def parse_annotation(text: str) -> Optional[Tuple[str, Tuple[str, ...],
                                                  str, bool]]:
    """Parse an annotation comment. Returns (kind, args, reason,
    well_formed) or None when the comment is not an annotation at
    all. ``transient`` requires a reason; the lock annotations state a
    contract, not an exception, and need none."""
    m = _ANNOT_RE.search(text)
    if m is None:
        return None
    kind = m.group(1)
    args = tuple(a.strip() for a in m.group(2).split(",") if a.strip())
    reason = (m.group(3) or "").strip()
    ok = bool(args) and (kind != "transient" or bool(reason))
    return kind, args, reason, ok


def _scan_annotations(path: str, comments: List[Comment],
                      code_lines: Set[int]) -> List[Annotation]:
    out: List[Annotation] = []
    for c in comments:
        parsed = parse_annotation(c.text)
        if parsed is None:
            continue
        kind, args, reason, ok = parsed
        if not ok:
            continue  # engine reports it as a malformed directive
        target = c.line
        if c.line not in code_lines:
            nxt = [ln for ln in code_lines if ln > c.line]
            target = min(nxt) if nxt else c.line
        out.append(Annotation(kind, args, reason, path, c.line, target))
    return out


# ---------------------------------------------------------------------------
# Include graph
# ---------------------------------------------------------------------------

_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def _scan_includes(path: str, toks: List[Token]) -> List[IncludeEdge]:
    out = []
    for t in toks:
        if t.kind != PP:
            continue
        m = _INCLUDE_RE.match(t.text)
        if m:
            out.append(IncludeEdge(path, t.line, m.group(1)))
    return out


# ---------------------------------------------------------------------------
# Enum definitions
# ---------------------------------------------------------------------------

def _scan_enums(path: str, toks, model: ProgramModel) -> None:
    """Record every named enum definition: ``enum [class|struct] Name
    [: base] { A, B = expr, C };`` at any nesting. Anonymous enums
    have no switchable type name and are skipped."""
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != IDENT or t.text != "enum":
            i += 1
            continue
        j = i + 1
        scoped = False
        if j < n and toks[j].kind == IDENT and \
                toks[j].text in ("class", "struct"):
            scoped = True
            j += 1
        if j >= n or toks[j].kind != IDENT:
            i = j + 1
            continue
        name_tok = toks[j]
        j += 1
        # Optional ': base-type' — walk to the '{' or give up at ';'
        # (opaque declaration / elaborated type specifier).
        while j < n and toks[j].text not in ("{", ";"):
            j += 1
        if j >= n or toks[j].text == ";":
            i = j + 1
            continue
        close = _match_close(toks, j, "{", "}")
        ei = EnumInfo(name_tok.text, path, name_tok.line,
                      scoped=scoped)
        # Enumerators: the identifier opening each comma-separated
        # entry; '= expr' initializers are skipped bracket-aware.
        k = j + 1
        expect_name = True
        depth = 0
        while k < close:
            tt = toks[k]
            if tt.kind == PUNCT:
                if tt.text in "([{":
                    depth += 1
                elif tt.text in ")]}":
                    depth -= 1
                elif tt.text == "," and depth == 0:
                    expect_name = True
                k += 1
                continue
            if tt.kind == IDENT and expect_name and depth == 0:
                ei.enumerators.append(tt.text)
                expect_name = False
            k += 1
        if ei.enumerators:
            model.enums.setdefault(ei.name, []).append(ei)
        i = close + 1


# ---------------------------------------------------------------------------
# Class and member extraction
# ---------------------------------------------------------------------------

def _match_close(toks: List[Token], i: int, opener: str,
                 closer: str) -> int:
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        t = toks[j]
        if t.kind == PUNCT:
            if t.text == opener:
                depth += 1
            elif t.text == closer:
                depth -= 1
                if depth == 0:
                    return j
        j += 1
    return n


def _scan_classes(path: str, toks: List[Token], model: ProgramModel,
                  lo: int, hi: int, prefix: str) -> None:
    """Find class/struct definitions in toks[lo:hi] and record their
    members; recurses into nested classes."""
    i = lo
    n = min(hi, len(toks))
    while i < n:
        t = toks[i]
        if t.kind != IDENT or t.text not in ("class", "struct"):
            i += 1
            continue
        prev = toks[i - 1] if i > lo else None
        if prev is not None and prev.kind == IDENT and \
                prev.text == "enum":
            i += 1  # enum class: handled by the enum skip below
            continue
        if i + 1 >= n or toks[i + 1].kind != IDENT:
            i += 1
            continue
        name_tok = toks[i + 1]
        # Walk to the '{' that opens the body or a ';' (forward decl /
        # 'class X;' friend). Base clauses may contain template
        # arguments but never braces or semicolons.
        j = i + 2
        while j < n and toks[j].text not in ("{", ";"):
            j += 1
        if j >= n or toks[j].text == ";":
            i = j + 1
            continue
        body_open = j
        body_close = _match_close(toks, body_open, "{", "}")
        qual = (prefix + "::" + name_tok.text) if prefix \
            else name_tok.text
        ci = ClassInfo(qual, path, name_tok.line,
                       toks[body_close].line
                       if body_close < n else name_tok.line)
        _scan_class_body(path, toks, model, ci,
                         body_open + 1, body_close, qual)
        model.classes.setdefault(qual, []).append(ci)
        i = body_close + 1


def _scan_class_body(path: str, toks: List[Token],
                     model: ProgramModel, ci: ClassInfo,
                     lo: int, hi: int, qual: str) -> None:
    n = min(hi, len(toks))
    i = lo
    while i < n:
        t = toks[i]
        # Access specifiers: 'public:' etc.
        if t.kind == IDENT and t.text in _ACCESS_SPECIFIERS and \
                i + 1 < n and toks[i + 1].text == ":":
            i += 2
            continue
        # Nested class/struct definition (recurse), or forward decl.
        if t.kind == IDENT and t.text in ("class", "struct") and \
                i + 1 < n and toks[i + 1].kind == IDENT:
            j = i + 2
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j < n and toks[j].text == "{":
                _scan_classes(path, toks, model, i,
                              _match_close(toks, j, "{", "}") + 1, qual)
                i = _match_close(toks, j, "{", "}") + 1
                # Trailing declarators ('} name;') declare a member of
                # the nested type.
                if i < n and toks[i].kind == IDENT and \
                        i + 1 < n and toks[i + 1].text == ";":
                    ci.members.append(Member(
                        toks[i].text, toks[i].line, toks[i].col,
                        toks[i - 1].text if i > 0 else ""))
                    i += 2
                elif i < n and toks[i].text == ";":
                    i += 1
                continue
            i = j + 1
            continue
        # enums: skip the whole definition.
        if t.kind == IDENT and t.text == "enum":
            j = i
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j < n and toks[j].text == "{":
                j = _match_close(toks, j, "{", "}")
            while j < n and toks[j].text != ";":
                j += 1
            i = j + 1
            continue
        # Statements that never declare a data member.
        if t.kind == IDENT and t.text in _SKIP_STATEMENT_HEADS:
            i = _skip_statement(toks, i, n)
            continue
        if t.kind == PP:
            i += 1
            continue
        # Generic statement: collect up to ';' / method body.
        i = _scan_member_statement(path, toks, model, ci, i, n, qual)


def _skip_statement(toks: List[Token], i: int, n: int) -> int:
    """Skip to just past the terminating ';' (balancing braces, e.g.
    an in-class template method definition)."""
    while i < n:
        txt = toks[i].text
        if toks[i].kind == PUNCT:
            if txt == "{":
                i = _match_close(toks, i, "{", "}")
                # A closing brace can itself terminate (method defs).
                if i + 1 < n and toks[i + 1].text == ";":
                    return i + 2
                return i + 1
            if txt == ";":
                return i + 1
        i += 1
    return n


def _scan_member_statement(path: str, toks: List[Token],
                           model: ProgramModel, ci: ClassInfo,
                           start: int, n: int, qual: str) -> int:
    """Parse one class-body statement starting at ``start``. Records a
    data member, a method declaration, or a method definition (whose
    body is captured for the body index). Returns the index just past
    the statement."""
    i = start
    is_static = False
    seen_paren_group = False
    name_tok: Optional[Token] = None       # last top-level identifier
    pre_name_type: List[str] = []
    angle = 0
    while i < n:
        t = toks[i]
        txt = t.text
        if t.kind == PUNCT:
            if txt == "(":
                close = _match_close(toks, i, "(", ")")
                if angle > 0:
                    # Parens inside template arguments, e.g.
                    # std::function<void()>: part of the type.
                    i = close + 1
                    continue
                if name_tok is not None and not seen_paren_group:
                    # IDENT '(' => function (in-class paren-init of a
                    # data member is not legal C++).
                    return _finish_method(path, toks, model, ci,
                                          name_tok, close, n, qual)
                seen_paren_group = True
                i = close + 1
                continue
            if txt == "[":
                i = _match_close(toks, i, "[", "]") + 1
                continue
            if txt == "<":
                angle += 1
                i += 1
                continue
            if txt in (">", ">>"):
                angle = max(0, angle - (2 if txt == ">>" else 1))
                i += 1
                continue
            if txt == "=" or txt == "{":
                # Initializer: the declarator is complete.
                j = _skip_statement(toks, i, n) if txt == "{" else \
                    _finish_initializer(toks, i, n)
                if name_tok is not None:
                    ci.members.append(_make_member(
                        name_tok, pre_name_type, is_static))
                    _note_mutex(ci, pre_name_type, name_tok.text)
                return j
            if txt == ";":
                if name_tok is not None:
                    ci.members.append(_make_member(
                        name_tok, pre_name_type, is_static))
                    _note_mutex(ci, pre_name_type, name_tok.text)
                return i + 1
            if txt == ":" and name_tok is not None:
                # Bitfield width: skip to ';'.
                j = i + 1
                while j < n and toks[j].text != ";":
                    j += 1
                ci.members.append(_make_member(
                    name_tok, pre_name_type, is_static))
                return j + 1
            i += 1
            continue
        if t.kind == IDENT:
            if txt == "operator":
                # Operator overload declaration/definition: never a
                # data member; skip the whole statement.
                return _skip_statement(toks, i, n)
            if txt == "static":
                is_static = True
            elif txt not in _DECL_QUALIFIERS and angle == 0:
                if name_tok is not None:
                    pre_name_type.append(name_tok.text)
                name_tok = t
            i += 1
            continue
        i += 1
    return n


def _finish_initializer(toks: List[Token], i: int, n: int) -> int:
    """From an '=' token, skip the initializer expression to ';'."""
    while i < n and toks[i].text != ";":
        if toks[i].text in ("(", "[", "{"):
            i = _match_close(toks, i, toks[i].text,
                             {"(": ")", "[": "]", "{": "}"}[toks[i].text])
        i += 1
    return i + 1


def _make_member(name_tok: Token, type_parts: List[str],
                 is_static: bool) -> Member:
    return Member(name_tok.text, name_tok.line, name_tok.col,
                  "::".join(type_parts[-2:]), is_static)


def _note_mutex(ci: ClassInfo, type_parts: List[str],
                name: str) -> None:
    if any(p in _MUTEX_TYPES for p in type_parts):
        ci.mutex_members.add(name)


def _finish_method(path: str, toks: List[Token], model: ProgramModel,
                   ci: ClassInfo, name_tok: Token, paren_close: int,
                   n: int, qual: str) -> int:
    """We are at a method named ``name_tok`` whose parameter list
    closes at ``paren_close``. Record the declaration; if a body
    follows, capture it."""
    ci.method_lines.setdefault(name_tok.text, name_tok.line)
    j = paren_close + 1
    # Skip cv-qualifiers, ref-qualifiers, noexcept(...), override,
    # final, trailing return types, = 0 / = default / = delete.
    while j < n and toks[j].text not in ("{", ";"):
        if toks[j].text == "(":
            j = _match_close(toks, j, "(", ")")
        j += 1
    if j < n and toks[j].text == "{":
        close = _match_close(toks, j, "{", "}")
        model.bodies.setdefault(path, []).append(MethodBody(
            qual, name_tok.text, path, name_tok.line, j, close))
        if close + 1 < n and toks[close + 1].text == ";":
            return close + 2
        return close + 1
    return j + 1


# ---------------------------------------------------------------------------
# Out-of-line method definitions
# ---------------------------------------------------------------------------

_BODY_INTRO_SKIP = {"const", "noexcept", "override", "final",
                    "mutable", "->"}

# An unqualified IDENT '(' ... ')' '{' at namespace scope is a free
# function definition — unless the IDENT is a statement keyword or an
# operator-like builtin, which produce the same token shape.
_NOT_A_FUNCTION = {"if", "while", "for", "switch", "do", "catch",
                   "return", "sizeof", "alignof", "alignas",
                   "decltype", "noexcept", "static_assert", "assert",
                   "defined", "new", "delete", "throw", "else",
                   "case", "default", "try"}


def _scan_out_of_line_bodies(path: str, toks: List[Token],
                             model: ProgramModel) -> None:
    """Find ``Qualified::name(...) ... { ... }`` and free-function
    ``name(...) ... { ... }`` definitions at any nesting (namespace
    bodies are just braces to this scan; free functions record an
    empty class qualifier). In-class definitions are captured by the
    class scan; this pass skips token ranges already claimed by
    it."""
    claimed = [(b.body_lo, b.body_hi)
               for b in model.bodies.get(path, [])]

    def in_claimed(i: int) -> bool:
        return any(lo <= i <= hi for lo, hi in claimed)

    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != IDENT or in_claimed(i):
            i += 1
            continue
        # Longest chain IDENT (:: IDENT)+ followed by '('. A '~'
        # after '::' is a destructor: one more segment, then the
        # chain necessarily ends.
        j = i
        parts = [toks[j].text]
        while j + 2 < n and toks[j + 1].kind == PUNCT and \
                toks[j + 1].text == "::":
            if toks[j + 2].kind == IDENT:
                parts.append(toks[j + 2].text)
                j += 2
            elif toks[j + 2].kind == PUNCT and \
                    toks[j + 2].text == "~" and j + 3 < n and \
                    toks[j + 3].kind == IDENT:
                parts.append("~" + toks[j + 3].text)
                j += 3
                break
            else:
                break
        if j + 1 >= n or toks[j + 1].text != "(":
            i += 1
            continue
        if len(parts) == 1 and parts[0] in _NOT_A_FUNCTION:
            i += 1
            continue
        close = _match_close(toks, j + 1, "(", ")")
        k = close + 1
        while k < n and ((toks[k].kind == IDENT and
                          toks[k].text in _BODY_INTRO_SKIP) or
                         (toks[k].kind == PUNCT and
                          toks[k].text == "->")):
            if toks[k].text == "->":
                # Trailing return type: skip its tokens up to '{'.
                while k < n and toks[k].text != "{":
                    k += 1
                break
            k += 1
        # Constructor initializer list: ': member(init), ...' between
        # the parameter list and the body.
        if k < n and toks[k].kind == PUNCT and toks[k].text == ":":
            k += 1
            while k < n and toks[k].text != "{":
                if toks[k].text == "(":
                    k = _match_close(toks, k, "(", ")")
                elif toks[k].text == "{":
                    break
                k += 1
        if k < n and toks[k].text == "{" and not in_claimed(k):
            body_close = _match_close(toks, k, "{", "}")
            model.bodies.setdefault(path, []).append(MethodBody(
                "::".join(parts[:-1]), parts[-1], path,
                toks[i].line, k, body_close))
            i = body_close + 1
            continue
        i = j + 1


# ---------------------------------------------------------------------------
# Build
# ---------------------------------------------------------------------------

def build_model(streams: Dict[str, List[Token]],
                comments: Dict[str, List[Comment]]) -> ProgramModel:
    """Build the whole-program model over every lexed file. Iteration
    is path-sorted so the model — and everything derived from it — is
    independent of argument and worker ordering."""
    model = ProgramModel()
    model.streams = dict(streams)
    for path in sorted(streams):
        toks = streams[path]
        model.includes[path] = _scan_includes(path, toks)
        code_lines = {t.line for t in toks}
        model.annotations[path] = _scan_annotations(
            path, comments.get(path, []), code_lines)
        _scan_enums(path, toks, model)
        _scan_classes(path, toks, model, 0, len(toks), "")
        _scan_out_of_line_bodies(path, toks, model)
        model.bodies.setdefault(path, []).sort(
            key=lambda b: (b.body_lo, b.method))
    return model


def model_to_json(model: ProgramModel) -> Dict:
    """Serializable snapshot of the model (CI uploads this as a debug
    artifact when the lint gate fails)."""
    return {
        "classes": {
            name: [{
                "path": ci.path,
                "line": ci.line,
                "end_line": ci.end_line,
                "members": [{
                    "name": m.name, "line": m.line,
                    "type": m.type_text, "static": m.is_static,
                } for m in ci.members],
                "methods": dict(sorted(ci.method_lines.items())),
                "mutex_members": sorted(ci.mutex_members),
            } for ci in lst]
            for name, lst in sorted(model.classes.items())
        },
        "bodies": {
            path: [{
                "class": b.cls, "method": b.method,
                "sig_line": b.sig_line,
            } for b in lst]
            for path, lst in sorted(model.bodies.items()) if lst
        },
        "includes": {
            path: [{"line": e.line, "target": e.target} for e in lst]
            for path, lst in sorted(model.includes.items()) if lst
        },
        "annotations": {
            path: [{
                "kind": a.kind, "args": list(a.args),
                "reason": a.reason, "line": a.comment_line,
                "target_line": a.target_line,
            } for a in lst]
            for path, lst in sorted(model.annotations.items()) if lst
        },
        "enums": {
            name: [{
                "path": ei.path, "line": ei.line,
                "scoped": ei.scoped,
                "enumerators": list(ei.enumerators),
            } for ei in lst]
            for name, lst in sorted(model.enums.items())
        },
    }
