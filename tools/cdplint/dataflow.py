"""Generic forward dataflow solver over cdplint CFGs.

One worklist algorithm serves every flow-sensitive rule; each rule
supplies its lattice as three callables:

    entry_state          value at the function entry
    transfer(block, s)   abstract execution of one block; must return
                         a fresh value, never mutate its input
    join(a, b)           least upper bound of two predecessor states

Unreachable-so-far blocks carry the implicit bottom ``None`` (join
with ``None`` is the identity), so rules never special-case it. The
solver iterates to a fixpoint in reverse post-order; with monotone
transfer functions over finite lattices — all the rules here use
small power sets or two-point lattices — termination is immediate
and the result is independent of iteration order, keeping ``--jobs``
output byte-identical.

``states_at`` replays a block's transfer statement-by-statement so a
rule can ask for the state *at a token position* (e.g. "is the lock
held where this member is read?") without re-deriving the in-block
walk itself.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Tuple, TypeVar

from cfg import Block, Cfg

S = TypeVar("S")


def solve_forward(cfg: Cfg,
                  entry_state: S,
                  transfer: Callable[[Block, S], S],
                  join: Callable[[S, S], S],
                  ) -> Tuple[Dict[int, Optional[S]],
                             Dict[int, Optional[S]]]:
    """Run the worklist algorithm; returns ({block: in-state},
    {block: out-state}). Blocks unreachable from entry keep None."""
    order = cfg.rpo()
    pos = {bid: i for i, bid in enumerate(order)}
    in_s: Dict[int, Optional[S]] = {b.bid: None for b in cfg.blocks}
    out_s: Dict[int, Optional[S]] = {b.bid: None for b in cfg.blocks}

    work = deque(order)
    queued = set(order)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = cfg.block(bid)
        state: Optional[S] = entry_state if bid == cfg.entry else None
        for p in block.preds:
            o = out_s[p]
            if o is None:
                continue
            state = o if state is None else join(state, o)
        if state is None:
            continue  # not yet reachable; a pred will requeue us
        in_s[bid] = state
        new_out = transfer(block, state)
        if new_out != out_s[bid]:
            out_s[bid] = new_out
            for s in block.succs:
                if s in pos and s not in queued:
                    queued.add(s)
                    work.append(s)
    return in_s, out_s


def states_at(block: Block,
              in_state: S,
              stmt_transfer: Callable[[Tuple[int, int], S], S],
              ):
    """Yield (stmt_range, state-before-stmt) for each statement of
    ``block``, threading ``stmt_transfer`` between them. The caller's
    block-level transfer must be the composition of the same
    ``stmt_transfer`` for the answers to line up."""
    state = in_state
    for rng in block.stmts:
        yield rng, state
        state = stmt_transfer(rng, state)
