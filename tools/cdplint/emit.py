"""SARIF 2.1.0 emitter.

Produces a minimal-but-valid static-analysis log the GitHub
code-scanning upload action accepts: one run, tool.driver metadata
with the full rule catalog, and one result per finding with a
physical location. Text output lives in engine.main (it is just the
finding lines); this module only handles the structured format.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVEL = {"error": "error", "warning": "warning"}


def to_sarif(findings: List, rules_map: Dict[str, type],
             builtin: Dict[str, Tuple[str, str]]) -> str:
    rule_descs = []
    rule_index = {}
    for rid, cls in sorted(rules_map.items()):
        rule_index[rid] = len(rule_descs)
        rule_descs.append({
            "id": rid,
            "name": _camel(rid),
            "shortDescription": {
                "text": cls.doc.strip().splitlines()[0].strip()},
            "fullDescription": {
                "text": " ".join(ln.strip() for ln in
                                 cls.doc.strip().splitlines())},
            "defaultConfiguration": {
                "level": _LEVEL.get(cls.severity, "error")},
        })
    for rid, (sev, doc) in sorted(builtin.items()):
        rule_index[rid] = len(rule_descs)
        rule_descs.append({
            "id": rid,
            "name": _camel(rid),
            "shortDescription": {"text": doc.split(". ")[0]},
            "fullDescription": {"text": doc},
            "defaultConfiguration": {"level": _LEVEL.get(sev, "error")},
        })

    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": _LEVEL.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": max(f.col, 1),
                    },
                },
            }],
        })

    log = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "cdplint",
                    "informationUri":
                        "tools/cdplint (in-repo static analyzer)",
                    "version": "1.0.0",
                    "rules": rule_descs,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(log, indent=2) + "\n"


def _camel(rid: str) -> str:
    return "".join(part.capitalize() for part in rid.split("-"))
