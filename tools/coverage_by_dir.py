#!/usr/bin/env python3
"""Per-directory line-coverage report for the CI coverage job.

Reads a gcovr JSON report (``gcovr --json``) and prints one row per
source directory: covered/total lines, the directory's line coverage,
and its delta against the repo-wide floor in tools/coverage_floor.txt.
Directories below the floor are marked; the repo-wide gate itself
stays with gcovr's --fail-under-line so this report is informational
and never races the enforcement.

Usage: coverage_by_dir.py <gcovr-json> [floor-file]
"""

import json
import os
import sys


def main(argv):
    if len(argv) not in (2, 3):
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1]) as f:
        report = json.load(f)
    floor_file = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(argv[0])), "coverage_floor.txt")
    with open(floor_file) as f:
        floor = float(f.read().strip())

    dirs = {}
    for entry in report.get("files", []):
        d = os.path.dirname(entry["file"]) or "."
        covered, total = dirs.get(d, (0, 0))
        lines = entry.get("lines", [])
        covered += sum(1 for l in lines if l.get("count", 0) > 0)
        total += len(lines)
        dirs[d] = (covered, total)

    if not dirs:
        sys.stderr.write("coverage_by_dir: no files in report\n")
        return 1

    print("%-28s %9s %8s %9s" % ("directory", "lines", "cover",
                                 "vs floor"))
    all_covered = all_total = 0
    for d in sorted(dirs):
        covered, total = dirs[d]
        all_covered += covered
        all_total += total
        pct = 100.0 * covered / total if total else 0.0
        delta = pct - floor
        print("%-28s %4d/%4d %7.1f%% %+8.1f%%%s"
              % (d, covered, total, pct, delta,
                 "  (below floor)" if delta < 0 else ""))
    pct = 100.0 * all_covered / all_total if all_total else 0.0
    print("%-28s %4d/%4d %7.1f%% %+8.1f%%  (floor %.0f%%)"
          % ("total", all_covered, all_total, pct, pct - floor, floor))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
