/**
 * @file
 * cdpsim — command-line driver for the simulator.
 *
 * Runs one or more workloads under a fully specified configuration
 * and reports results as a human-readable table, a CSV row stream, or
 * a full statistics dump. Also captures workload uop streams to
 * LIT-style trace files.
 *
 * Usage:
 *   cdpsim [key=value ...] [--workloads=a,b,c] [--csv] [--stats]
 *          [--capture=PATH]
 *
 * Examples:
 *   cdpsim workload=tpcc-2 --stats
 *   cdpsim --workloads=all --csv cdp.depth=5 > sweep.csv
 *   cdpsim workload=verilog-gate --capture=/tmp/vg.cdpt
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "sim/memory_system.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

using namespace cdp;

namespace
{

struct Options
{
    SimConfig cfg;
    std::vector<std::string> workloads;
    bool csv = false;
    bool stats = false;
    std::string capturePath;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: cdpsim [key=value ...] [--workloads=a,b,c|all]\n"
        "              [--csv] [--stats] [--capture=PATH]\n"
        "keys: see src/sim/config.cc (e.g. cdp.depth=5, "
        "mem.l2_kb=512,\n      workload=tpcc-2, measure_uops=2000000)\n");
}

Options
parse(int argc, char **argv)
{
    Options opt;
    std::vector<char *> cfg_args;
    cfg_args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg.rfind("--capture=", 0) == 0) {
            opt.capturePath = arg.substr(10);
        } else if (arg.rfind("--workloads=", 0) == 0) {
            const std::string list = arg.substr(12);
            if (list == "all") {
                for (const auto &s : table2Suite())
                    opt.workloads.push_back(s.name);
            } else {
                std::stringstream ss(list);
                std::string item;
                while (std::getline(ss, item, ','))
                    if (!item.empty())
                        opt.workloads.push_back(item);
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            cfg_args.push_back(argv[i]);
        }
    }
    opt.cfg.parseArgs(static_cast<int>(cfg_args.size()),
                      cfg_args.data());
    if (opt.workloads.empty())
        opt.workloads.push_back(opt.cfg.workload);
    return opt;
}

void
printCsvHeader()
{
    std::printf("workload,ipc,cycles,uops,mptu,l2_misses,"
                "mask_full_stride,mask_partial_stride,mask_full_cdp,"
                "mask_partial_cdp,stride_issued,cdp_issued,"
                "cdp_useful,rescans,promotions,demand_walks,"
                "prefetch_walks\n");
}

void
printCsvRow(const RunResult &r)
{
    const auto &m = r.mem;
    std::printf("%s,%.6f,%llu,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,"
                "%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                r.workload.c_str(), r.ipc,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.uops), r.mptu(),
                static_cast<unsigned long long>(m.l2DemandMisses),
                static_cast<unsigned long long>(m.maskFullStride),
                static_cast<unsigned long long>(m.maskPartialStride),
                static_cast<unsigned long long>(m.maskFullCdp),
                static_cast<unsigned long long>(m.maskPartialCdp),
                static_cast<unsigned long long>(m.strideIssued),
                static_cast<unsigned long long>(m.cdpIssued),
                static_cast<unsigned long long>(m.cdpUseful),
                static_cast<unsigned long long>(m.rescans),
                static_cast<unsigned long long>(m.promotions),
                static_cast<unsigned long long>(m.demandWalks),
                static_cast<unsigned long long>(m.prefetchWalks));
}

void
capture(const SimConfig &cfg, const std::string &path)
{
    Simulator sim(cfg);
    CapturingSource cap(sim.workload(), path,
                        cfg.workload + "/seed" +
                            std::to_string(cfg.workloadSeed));
    StatGroup stats;
    MemorySystem mem(cfg, sim.heap().backingStore(),
                     sim.heap().pageTable(), &stats);
    OooCore core(cfg.core, cap, mem, &stats);
    core.run(cfg.warmupUops + cfg.measureUops);
    cap.finish();
    std::fprintf(stderr, "captured %llu uops to %s\n",
                 static_cast<unsigned long long>(cap.captured()),
                 path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parse(argc, argv);

        if (!opt.capturePath.empty()) {
            SimConfig c = opt.cfg;
            c.workload = opt.workloads.front();
            capture(c, opt.capturePath);
            return 0;
        }

        if (opt.csv)
            printCsvHeader();
        else
            std::fprintf(stderr, "%s\n\n", opt.cfg.summary().c_str());

        for (const auto &name : opt.workloads) {
            SimConfig c = opt.cfg;
            c.workload = name;
            Simulator sim(c);
            const RunResult r = sim.run();
            if (opt.csv) {
                printCsvRow(r);
            } else {
                std::printf("%-16s ipc %8.4f  mptu %8.3f  cycles "
                            "%12llu  cdp(issued %llu useful %llu)\n",
                            name.c_str(), r.ipc, r.mptu(),
                            static_cast<unsigned long long>(r.cycles),
                            static_cast<unsigned long long>(
                                r.mem.cdpIssued),
                            static_cast<unsigned long long>(
                                r.mem.cdpUseful));
            }
            if (opt.stats) {
                std::printf("---- full statistics: %s ----\n",
                            name.c_str());
                sim.stats().dump(std::cout);
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cdpsim: error: %s\n", e.what());
        usage();
        return 1;
    }
}
