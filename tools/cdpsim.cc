/**
 * @file
 * cdpsim — command-line driver for the simulator.
 *
 * Runs one or more workloads under a fully specified configuration
 * and reports results as a human-readable table, a CSV row stream, or
 * a full statistics dump. Also captures workload uop streams to
 * LIT-style trace files.
 *
 * Usage:
 *   cdpsim [key=value ...] [--workloads=a,b,c] [--csv] [--stats]
 *          [--capture=PATH] [--trace-out=PATH] [--trace-json=PATH]
 *          [--checkpoint-out=PATH] [--checkpoint-in=PATH]
 *          [-jN|--jobs=N]
 *
 * --checkpoint-out warms the (single) workload, drains the machine to
 * a quiesce point, writes a checkpoint, then measures as usual.
 * --checkpoint-in restores a machine from a checkpoint and goes
 * straight to the measured phase — the two runs' measured output is
 * byte-identical, which tests/checkpoint_determinism.py enforces.
 * Sweep knobs (cdp.*, adaptive.*, run lengths) may differ between the
 * writing and the restoring run; machine geometry and workload must
 * match and are verified against the checkpoint's config guard.
 *
 * --trace-out / --trace-json enable the lifecycle tracer (implies
 * trace.enabled=1) and dump the run's event ring after the measured
 * phase settles: --trace-out writes the compact binary format that
 * tools/cdptrace consumes, --trace-json writes Chrome trace_event
 * JSON directly (open in chrome://tracing or Perfetto). Both accept a
 * single workload only. Requires a CDP_ENABLE_TRACE build (default).
 *
 * Multiple workloads fan out over the parallel experiment runner
 * (src/runner): `-jN` (or CDP_JOBS=N) picks the worker count, rows
 * always print in the order the workloads were listed, so the output
 * is byte-identical at any job count.
 *
 * Examples:
 *   cdpsim workload=tpcc-2 --stats
 *   cdpsim --workloads=all --csv -j8 cdp.depth=5 > sweep.csv
 *   cdpsim workload=verilog-gate --capture=/tmp/vg.cdpt
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>
#include <stdexcept>

#include "obs/trace_io.hh"
#include "runner/sim_runner.hh"
#include "sim/memory_system.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

using namespace cdp;

namespace
{

struct Options
{
    SimConfig cfg;
    std::vector<std::string> workloads;
    bool csv = false;
    bool stats = false;
    std::string capturePath;
    std::string traceOutPath;  //!< binary lifecycle trace (CDPO)
    std::string traceJsonPath; //!< Chrome trace_event JSON
    std::string checkpointOut; //!< write checkpoint after warm-up
    std::string checkpointIn;  //!< restore checkpoint, skip warm-up
    unsigned jobs = 0; //!< runner workers; 0 = CDP_JOBS / hardware

    bool traceWanted() const
    {
        return !traceOutPath.empty() || !traceJsonPath.empty();
    }
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: cdpsim [key=value ...] [--workloads=a,b,c|all]\n"
        "              [--csv] [--stats] [--capture=PATH]\n"
        "              [--trace-out=PATH] [--trace-json=PATH]\n"
        "              [--checkpoint-out=PATH] [--checkpoint-in=PATH] "
        "[-jN|--jobs=N]\n"
        "keys: see src/sim/config.cc (e.g. cdp.depth=5, "
        "mem.l2_kb=512,\n      workload=tpcc-2, measure_uops=2000000)\n");
}

Options
parse(int argc, char **argv)
{
    Options opt;
    opt.jobs = runner::parseJobsFlag(argc, argv);
    std::vector<char *> cfg_args;
    cfg_args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg.rfind("--capture=", 0) == 0) {
            opt.capturePath = arg.substr(10);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opt.traceOutPath = arg.substr(12);
        } else if (arg.rfind("--trace-json=", 0) == 0) {
            opt.traceJsonPath = arg.substr(13);
        } else if (arg.rfind("--checkpoint-out=", 0) == 0) {
            opt.checkpointOut = arg.substr(17);
        } else if (arg.rfind("--checkpoint-in=", 0) == 0) {
            opt.checkpointIn = arg.substr(16);
        } else if (arg.rfind("--workloads=", 0) == 0) {
            const std::string list = arg.substr(12);
            if (list == "all") {
                for (const auto &s : table2Suite())
                    opt.workloads.push_back(s.name);
            } else {
                std::stringstream ss(list);
                std::string item;
                while (std::getline(ss, item, ','))
                    if (!item.empty())
                        opt.workloads.push_back(item);
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            cfg_args.push_back(argv[i]);
        }
    }
    opt.cfg.parseArgs(static_cast<int>(cfg_args.size()),
                      cfg_args.data());
    if (opt.workloads.empty())
        opt.workloads.push_back(opt.cfg.workload);
    if (opt.traceWanted()) {
        if (opt.workloads.size() > 1)
            throw std::invalid_argument(
                "--trace-out/--trace-json take a single workload");
        if (!CDP_TRACE_ENABLED)
            throw std::invalid_argument(
                "this build has the tracer compiled out "
                "(reconfigure with -DCDP_ENABLE_TRACE=ON)");
        opt.cfg.trace.enabled = true;
    }
    if (!opt.checkpointOut.empty() && !opt.checkpointIn.empty())
        throw std::invalid_argument(
            "--checkpoint-out and --checkpoint-in are mutually "
            "exclusive");
    if (!opt.checkpointOut.empty() || !opt.checkpointIn.empty()) {
        if (opt.workloads.size() > 1)
            throw std::invalid_argument(
                "--checkpoint-out/--checkpoint-in take a single "
                "workload");
        if (!opt.capturePath.empty() || opt.traceWanted())
            throw std::invalid_argument(
                "--checkpoint-out/--checkpoint-in cannot be combined "
                "with --capture or --trace-*");
    }
    return opt;
}

/**
 * Dump the lifecycle trace of a finished run. The memory system is
 * drained first so every issued transaction has its fill in the ring
 * (the stats snapshot above is unaffected: it was captured before).
 */
void
dumpTrace(Simulator &sim, const Options &opt)
{
    sim.memory().drainAll(sim.core().currentCycle());
    const obs::Tracer &trc = sim.memory().tracer();
    const std::vector<obs::TraceEvent> events = trc.snapshot();
    const std::string tag =
        sim.config().workload + "/seed" +
        std::to_string(sim.config().workloadSeed);
    if (!opt.traceOutPath.empty()) {
        obs::writeBinaryTrace(opt.traceOutPath, events, trc.dropped(),
                              tag);
        std::fprintf(stderr, "trace: %llu events (%llu overwritten) "
                             "-> %s\n",
                     static_cast<unsigned long long>(events.size()),
                     static_cast<unsigned long long>(trc.dropped()),
                     opt.traceOutPath.c_str());
    }
    if (!opt.traceJsonPath.empty()) {
        obs::LoadedTrace t;
        t.events = events;
        t.dropped = trc.dropped();
        t.tag = tag;
        std::ofstream os(opt.traceJsonPath);
        if (!os)
            throw std::runtime_error("cannot write " +
                                     opt.traceJsonPath);
        obs::writeChromeJson(os, t);
    }
}

void
printCsvHeader()
{
    std::printf("workload,ipc,cycles,uops,mptu,l2_misses,"
                "mask_full_stride,mask_partial_stride,mask_full_cdp,"
                "mask_partial_cdp,stride_issued,cdp_issued,"
                "cdp_useful,rescans,promotions,demand_walks,"
                "prefetch_walks\n");
}

void
printCsvRow(const RunResult &r)
{
    const auto &m = r.mem;
    std::printf("%s,%.6f,%llu,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,"
                "%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                r.workload.c_str(), r.ipc,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.uops), r.mptu(),
                static_cast<unsigned long long>(m.l2DemandMisses),
                static_cast<unsigned long long>(m.maskFullStride),
                static_cast<unsigned long long>(m.maskPartialStride),
                static_cast<unsigned long long>(m.maskFullCdp),
                static_cast<unsigned long long>(m.maskPartialCdp),
                static_cast<unsigned long long>(m.strideIssued),
                static_cast<unsigned long long>(m.cdpIssued),
                static_cast<unsigned long long>(m.cdpUseful),
                static_cast<unsigned long long>(m.rescans),
                static_cast<unsigned long long>(m.promotions),
                static_cast<unsigned long long>(m.demandWalks),
                static_cast<unsigned long long>(m.prefetchWalks));
}

void
printHumanRow(const std::string &name, const RunResult &r)
{
    std::printf("%-16s ipc %8.4f  mptu %8.3f  cycles "
                "%12llu  cdp(issued %llu useful %llu)\n",
                name.c_str(), r.ipc, r.mptu(),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.mem.cdpIssued),
                static_cast<unsigned long long>(r.mem.cdpUseful));
}

void
capture(const SimConfig &cfg, const std::string &path)
{
    Simulator sim(cfg);
    CapturingSource cap(sim.workload(), path,
                        cfg.workload + "/seed" +
                            std::to_string(cfg.workloadSeed));
    StatGroup stats;
    MemorySystem mem(cfg, sim.heap().backingStore(),
                     sim.heap().pageTable(), &stats);
    OooCore core(cfg.core, cap, mem, &stats);
    core.run(cfg.warmupUops + cfg.measureUops);
    cap.finish();
    std::fprintf(stderr, "captured %llu uops to %s\n",
                 static_cast<unsigned long long>(cap.captured()),
                 path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parse(argc, argv);

        if (!opt.capturePath.empty()) {
            SimConfig c = opt.cfg;
            c.workload = opt.workloads.front();
            capture(c, opt.capturePath);
            return 0;
        }

        if (!opt.checkpointOut.empty() || !opt.checkpointIn.empty()) {
            SimConfig c = opt.cfg;
            c.workload = opt.workloads.front();
            if (opt.csv)
                printCsvHeader();
            else
                std::fprintf(stderr, "%s\n\n", c.summary().c_str());
            Simulator sim(c);
            if (!opt.checkpointIn.empty()) {
                sim.restoreCheckpointFile(opt.checkpointIn);
                std::fprintf(stderr, "checkpoint: restored %s\n",
                             opt.checkpointIn.c_str());
            } else {
                sim.warmup(c.warmupUops);
                sim.quiesce();
                sim.saveCheckpointFile(opt.checkpointOut);
                std::fprintf(stderr, "checkpoint: wrote %s\n",
                             opt.checkpointOut.c_str());
            }
            const RunResult r = sim.measure(c.measureUops);
            if (opt.csv)
                printCsvRow(r);
            else
                printHumanRow(c.workload, r);
            if (opt.stats) {
                std::printf("---- full statistics: %s ----\n",
                            c.workload.c_str());
                std::ostringstream os;
                sim.stats().dump(os);
                std::fputs(os.str().c_str(), stdout);
            }
            return 0;
        }

        if (opt.traceWanted()) {
            // Traced runs stay on this thread: the tracer lives in
            // the run's MemorySystem and is dumped after it settles.
            SimConfig c = opt.cfg;
            c.workload = opt.workloads.front();
            if (opt.csv)
                printCsvHeader();
            else
                std::fprintf(stderr, "%s\n\n", c.summary().c_str());
            Simulator sim(c);
            const RunResult r = sim.run();
            std::string statsDump;
            if (opt.stats) {
                std::ostringstream os;
                sim.stats().dump(os);
                statsDump = os.str();
            }
            if (opt.csv)
                printCsvRow(r);
            else
                printHumanRow(c.workload, r);
            if (opt.stats) {
                std::printf("---- full statistics: %s ----\n",
                            c.workload.c_str());
                std::fputs(statsDump.c_str(), stdout);
            }
            dumpTrace(sim, opt);
            return 0;
        }

        if (opt.csv)
            printCsvHeader();
        else
            std::fprintf(stderr, "%s\n\n", opt.cfg.summary().c_str());

        // Fan the workloads out; each task also captures its stats
        // dump as text so rows and dumps print in listing order no
        // matter which worker finished first.
        struct Row
        {
            RunResult result;
            std::string statsDump;
        };
        runner::SimRunner pool(opt.jobs);
        const auto rows =
            pool.map(opt.workloads.size(), [&](std::size_t i) {
                SimConfig c = opt.cfg;
                c.workload = opt.workloads[i];
                Simulator sim(c);
                Row row;
                row.result = sim.run();
                if (opt.stats) {
                    std::ostringstream os;
                    sim.stats().dump(os);
                    row.statsDump = os.str();
                }
                return row;
            });

        for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
            const RunResult &r = rows[i].result;
            if (opt.csv)
                printCsvRow(r);
            else
                printHumanRow(opt.workloads[i], r);
            if (opt.stats) {
                std::printf("---- full statistics: %s ----\n",
                            opt.workloads[i].c_str());
                std::fputs(rows[i].statsDump.c_str(), stdout);
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cdpsim: error: %s\n", e.what());
        usage();
        return 1;
    }
}
