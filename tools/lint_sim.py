#!/usr/bin/env python3
"""Repo-specific lint for the CDP simulator.

Rules (each can be waived per line with a trailing comment
``// lint-ok: <rule>``):

  stat-registered   Every Scalar/Distribution/Formula member declared
                    in a header under src/ must be constructed against
                    a StatGroup in the paired .cc (or inline in the
                    header). A default-constructed stat silently drops
                    every sample and never appears in the dump, so a
                    "registered" stat that is not wired up is a bug.

  raw-new-delete    No raw ``new`` / ``delete`` outside
                    src/mem/backing_store.* — ownership elsewhere goes
                    through standard containers and smart pointers.

  cycle-arith       Direct subtraction between Cycle-typed timestamp
                    expressions must go through the checked helpers
                    ``cyclesSince`` / ``cyclesUntil`` in
                    common/types.hh. Cycle is unsigned; a reversed
                    subtraction yields a silent ~2^64 latency instead
                    of an error.

  static-mutable    No function-local (or otherwise scope-indented)
                    ``static`` mutable state in src/ or bench/.
                    Simulations fan out across worker threads (see
                    src/runner), so hidden per-process state breaks
                    both thread-safety and the "-j1 == -jN"
                    determinism contract. ``static const`` /
                    ``constexpr`` data and static member *functions*
                    are fine; shared state must be an explicit
                    namespace-scope object with documented locking.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

STAT_TYPES = ("Scalar", "Distribution", "Formula")

# Identifiers that (in this code base) always hold Cycle timestamps.
# Subtraction between any two of these must use cyclesSince/Until.
CYCLE_IDENTS = {
    "now",
    "when",
    "then",
    "comp",
    "done",
    "horizon",
    "completion",
    "fillCycle",
    "enqueued",
    "lastDrain",
    "busyUntil",
    "deadline",
    "inflight_done",
    "freeCycle()",
}

WAIVER = re.compile(r"//\s*lint-ok:\s*([\w-]+)")


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return re.sub(r"//.*", "", line)


def iter_code_lines(path: Path):
    """Yield (lineno, raw, code) with block comments blanked."""
    in_block = False
    for lineno, raw in enumerate(
            path.read_text(errors="replace").splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Blank any /* ... */ sections (possibly several per line).
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        yield lineno, raw, strip_comments_and_strings(line)


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: Path, lineno: int, rule: str,
               message: str) -> None:
        self.findings.append(f"{path}:{lineno}: [{rule}] {message}")

    # -- stat-registered ---------------------------------------------

    def check_stats_registered(self, header: Path) -> None:
        decl_re = re.compile(
            r"^\s*(?:" + "|".join(STAT_TYPES) + r")\s+(\w+)\s*;")
        members: list[tuple[int, str]] = []
        for lineno, raw, code in iter_code_lines(header):
            m = decl_re.match(code)
            if not m:
                continue
            if WAIVER.search(raw) and "stat-registered" in raw:
                continue
            members.append((lineno, m.group(1)))
        if not members:
            return

        sources = [header.with_suffix(".cc"), header]
        text = ""
        for src in sources:
            if src.exists():
                text += src.read_text(errors="replace")
        for lineno, name in members:
            # Constructed with arguments somewhere (init list or body):
            # `name(...)` with a non-empty argument list.
            if re.search(r"\b" + re.escape(name) + r"\(\s*[^)\s]", text):
                continue
            self.report(
                header, lineno, "stat-registered",
                f"stat member '{name}' is never constructed against a "
                f"StatGroup; it would be invisible in every stats dump")

    # -- raw-new-delete ----------------------------------------------

    def check_raw_new_delete(self, path: Path) -> None:
        if path.name.startswith("backing_store"):
            return
        new_re = re.compile(r"\bnew\b(?!\s*\()")
        delete_re = re.compile(r"\bdelete\b(?!\s*;)")
        for lineno, raw, code in iter_code_lines(path):
            if WAIVER.search(raw) and "raw-new-delete" in raw:
                continue
            # `= delete` declarations are not deallocations.
            code_wo_deleted = re.sub(r"=\s*delete\b", "", code)
            if new_re.search(code):
                self.report(path, lineno, "raw-new-delete",
                            "raw 'new' outside backing_store; use "
                            "containers or std::make_unique")
            if delete_re.search(code_wo_deleted):
                self.report(path, lineno, "raw-new-delete",
                            "raw 'delete' outside backing_store")

    # -- cycle-arith -------------------------------------------------

    def check_cycle_arith(self, path: Path) -> None:
        idents = "|".join(re.escape(i) for i in sorted(CYCLE_IDENTS))
        # <cycle-ident> - <cycle-ident>, allowing member prefixes like
        # e->completion or line->fillCycle on either side.
        sub_re = re.compile(
            r"(?:[\w\]\)]+(?:->|\.))?\b(" + idents + r")\s-\s"
            r"(?:[\w\]\)]+(?:->|\.))?\b(" + idents + r")\b")
        for lineno, raw, code in iter_code_lines(path):
            if WAIVER.search(raw) and "cycle-arith" in raw:
                continue
            if "cyclesSince" in code or "cyclesUntil" in code:
                continue
            m = sub_re.search(code)
            if m:
                self.report(
                    path, lineno, "cycle-arith",
                    f"raw Cycle subtraction '{m.group(0).strip()}'; "
                    "use cyclesSince()/cyclesUntil() from "
                    "common/types.hh")


    # -- static-mutable ----------------------------------------------

    def check_static_mutable(self, path: Path) -> None:
        decl_re = re.compile(r"^\s+static\s+(.*)$")
        for lineno, raw, code in iter_code_lines(path):
            m = decl_re.match(code)
            if not m:
                continue
            if WAIVER.search(raw) and "static-mutable" in raw:
                continue
            rest = m.group(1)
            # Immutable state is safe to share between workers.
            if re.search(r"\bconst\b|\bconstexpr\b|\bconsteval\b",
                         rest):
                continue
            # A parameter list that opens before any initializer means
            # this is a static member *function*, not state. (A
            # paren-initialized static variable slips through this —
            # brace- or =-initialize statics so the linter can see
            # them.)
            paren = rest.find("(")
            init = re.search(r"[={]", rest)
            if paren >= 0 and (init is None or paren < init.start()):
                continue
            self.report(
                path, lineno, "static-mutable",
                "function-local static mutable state; sims run "
                "concurrently (src/runner) — hoist to an explicit "
                "synchronized namespace-scope object or make it const")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    args = ap.parse_args(argv)

    files: list[Path] = []
    for p in (Path(p) for p in (args.paths or ["src"])):
        if p.is_dir():
            files.extend(sorted(p.rglob("*.hh")))
            files.extend(sorted(p.rglob("*.cc")))
        elif p.exists():
            files.append(p)
        else:
            print(f"lint_sim: no such path: {p}", file=sys.stderr)
            return 2

    linter = Linter()
    for f in files:
        if f.suffix == ".hh":
            linter.check_stats_registered(f)
        linter.check_raw_new_delete(f)
        linter.check_cycle_arith(f)
        linter.check_static_mutable(f)

    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(f"lint_sim: {len(linter.findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_sim: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
