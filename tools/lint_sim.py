#!/usr/bin/env python3
"""Deprecated shim: lint_sim.py was replaced by tools/cdplint.

The rule set lives in tools/cdplint/rules/ (run
``python3 tools/cdplint --list-rules`` for the catalog). This shim
forwards so stale scripts and muscle memory keep working; update
callers to ``python3 tools/cdplint <paths>``.
"""

import os
import subprocess
import sys


def main() -> int:
    sys.stderr.write(
        "lint_sim.py is deprecated; forwarding to `python3 "
        "tools/cdplint`. Update your invocation.\n")
    here = os.path.dirname(os.path.abspath(__file__))
    return subprocess.call(
        [sys.executable, os.path.join(here, "cdplint")] + sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
