# Empty compiler generated dependencies file for test_markov_prefetcher.
# This may be replaced when dependencies are built.
