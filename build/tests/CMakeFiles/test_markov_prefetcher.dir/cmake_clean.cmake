file(REMOVE_RECURSE
  "CMakeFiles/test_markov_prefetcher.dir/test_markov_prefetcher.cc.o"
  "CMakeFiles/test_markov_prefetcher.dir/test_markov_prefetcher.cc.o.d"
  "test_markov_prefetcher"
  "test_markov_prefetcher.pdb"
  "test_markov_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
