file(REMOVE_RECURSE
  "CMakeFiles/test_vam.dir/test_vam.cc.o"
  "CMakeFiles/test_vam.dir/test_vam.cc.o.d"
  "test_vam"
  "test_vam.pdb"
  "test_vam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
