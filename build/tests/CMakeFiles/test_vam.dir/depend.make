# Empty dependencies file for test_vam.
# This may be replaced when dependencies are built.
