# Empty dependencies file for test_frame_allocator.
# This may be replaced when dependencies are built.
