file(REMOVE_RECURSE
  "CMakeFiles/test_frame_allocator.dir/test_frame_allocator.cc.o"
  "CMakeFiles/test_frame_allocator.dir/test_frame_allocator.cc.o.d"
  "test_frame_allocator"
  "test_frame_allocator.pdb"
  "test_frame_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
