file(REMOVE_RECURSE
  "CMakeFiles/test_extra_workloads.dir/test_extra_workloads.cc.o"
  "CMakeFiles/test_extra_workloads.dir/test_extra_workloads.cc.o.d"
  "test_extra_workloads"
  "test_extra_workloads.pdb"
  "test_extra_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
