file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_vam.dir/test_adaptive_vam.cc.o"
  "CMakeFiles/test_adaptive_vam.dir/test_adaptive_vam.cc.o.d"
  "test_adaptive_vam"
  "test_adaptive_vam.pdb"
  "test_adaptive_vam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_vam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
