# Empty compiler generated dependencies file for test_adaptive_vam.
# This may be replaced when dependencies are built.
