
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gshare.cc" "tests/CMakeFiles/test_gshare.dir/test_gshare.cc.o" "gcc" "tests/CMakeFiles/test_gshare.dir/test_gshare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
