file(REMOVE_RECURSE
  "CMakeFiles/test_ooo_core.dir/test_ooo_core.cc.o"
  "CMakeFiles/test_ooo_core.dir/test_ooo_core.cc.o.d"
  "test_ooo_core"
  "test_ooo_core.pdb"
  "test_ooo_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
