# Empty compiler generated dependencies file for test_ooo_core.
# This may be replaced when dependencies are built.
