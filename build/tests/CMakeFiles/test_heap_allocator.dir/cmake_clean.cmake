file(REMOVE_RECURSE
  "CMakeFiles/test_heap_allocator.dir/test_heap_allocator.cc.o"
  "CMakeFiles/test_heap_allocator.dir/test_heap_allocator.cc.o.d"
  "test_heap_allocator"
  "test_heap_allocator.pdb"
  "test_heap_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heap_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
