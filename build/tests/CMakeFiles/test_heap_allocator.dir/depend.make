# Empty dependencies file for test_heap_allocator.
# This may be replaced when dependencies are built.
