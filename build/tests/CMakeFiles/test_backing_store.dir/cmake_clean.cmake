file(REMOVE_RECURSE
  "CMakeFiles/test_backing_store.dir/test_backing_store.cc.o"
  "CMakeFiles/test_backing_store.dir/test_backing_store.cc.o.d"
  "test_backing_store"
  "test_backing_store.pdb"
  "test_backing_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backing_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
