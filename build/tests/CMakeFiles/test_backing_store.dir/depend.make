# Empty dependencies file for test_backing_store.
# This may be replaced when dependencies are built.
