# Empty compiler generated dependencies file for test_page_walker.
# This may be replaced when dependencies are built.
