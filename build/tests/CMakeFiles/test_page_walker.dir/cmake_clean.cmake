file(REMOVE_RECURSE
  "CMakeFiles/test_page_walker.dir/test_page_walker.cc.o"
  "CMakeFiles/test_page_walker.dir/test_page_walker.cc.o.d"
  "test_page_walker"
  "test_page_walker.pdb"
  "test_page_walker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
