# Empty compiler generated dependencies file for test_content_prefetcher.
# This may be replaced when dependencies are built.
