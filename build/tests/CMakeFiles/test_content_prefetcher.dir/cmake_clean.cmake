file(REMOVE_RECURSE
  "CMakeFiles/test_content_prefetcher.dir/test_content_prefetcher.cc.o"
  "CMakeFiles/test_content_prefetcher.dir/test_content_prefetcher.cc.o.d"
  "test_content_prefetcher"
  "test_content_prefetcher.pdb"
  "test_content_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_content_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
