# Empty compiler generated dependencies file for test_stride_prefetcher.
# This may be replaced when dependencies are built.
