file(REMOVE_RECURSE
  "CMakeFiles/test_stride_prefetcher.dir/test_stride_prefetcher.cc.o"
  "CMakeFiles/test_stride_prefetcher.dir/test_stride_prefetcher.cc.o.d"
  "test_stride_prefetcher"
  "test_stride_prefetcher.pdb"
  "test_stride_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stride_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
