# Empty dependencies file for test_nextline_prefetcher.
# This may be replaced when dependencies are built.
