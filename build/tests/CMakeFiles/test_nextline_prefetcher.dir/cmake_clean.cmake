file(REMOVE_RECURSE
  "CMakeFiles/test_nextline_prefetcher.dir/test_nextline_prefetcher.cc.o"
  "CMakeFiles/test_nextline_prefetcher.dir/test_nextline_prefetcher.cc.o.d"
  "test_nextline_prefetcher"
  "test_nextline_prefetcher.pdb"
  "test_nextline_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nextline_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
