file(REMOVE_RECURSE
  "CMakeFiles/cdpsim.dir/cdpsim.cc.o"
  "CMakeFiles/cdpsim.dir/cdpsim.cc.o.d"
  "cdpsim"
  "cdpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
