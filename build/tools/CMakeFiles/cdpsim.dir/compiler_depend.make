# Empty compiler generated dependencies file for cdpsim.
# This may be replaced when dependencies are built.
