file(REMOVE_RECURSE
  "CMakeFiles/tuning_heuristics.dir/tuning_heuristics.cc.o"
  "CMakeFiles/tuning_heuristics.dir/tuning_heuristics.cc.o.d"
  "tuning_heuristics"
  "tuning_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
