# Empty compiler generated dependencies file for tuning_heuristics.
# This may be replaced when dependencies are built.
