# Empty compiler generated dependencies file for markov_compare.
# This may be replaced when dependencies are built.
