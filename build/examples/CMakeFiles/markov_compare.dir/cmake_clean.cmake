file(REMOVE_RECURSE
  "CMakeFiles/markov_compare.dir/markov_compare.cc.o"
  "CMakeFiles/markov_compare.dir/markov_compare.cc.o.d"
  "markov_compare"
  "markov_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
