# Empty dependencies file for pointer_chasing.
# This may be replaced when dependencies are built.
