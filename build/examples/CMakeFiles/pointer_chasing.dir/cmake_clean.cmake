file(REMOVE_RECURSE
  "CMakeFiles/pointer_chasing.dir/pointer_chasing.cc.o"
  "CMakeFiles/pointer_chasing.dir/pointer_chasing.cc.o.d"
  "pointer_chasing"
  "pointer_chasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_chasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
