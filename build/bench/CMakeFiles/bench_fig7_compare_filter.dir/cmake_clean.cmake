file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_compare_filter.dir/bench_fig7_compare_filter.cc.o"
  "CMakeFiles/bench_fig7_compare_filter.dir/bench_fig7_compare_filter.cc.o.d"
  "bench_fig7_compare_filter"
  "bench_fig7_compare_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_compare_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
