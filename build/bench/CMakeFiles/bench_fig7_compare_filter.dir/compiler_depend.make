# Empty compiler generated dependencies file for bench_fig7_compare_filter.
# This may be replaced when dependencies are built.
