# Empty dependencies file for bench_fig9_depth_width.
# This may be replaced when dependencies are built.
