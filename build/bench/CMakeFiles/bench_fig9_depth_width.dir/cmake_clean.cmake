file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_depth_width.dir/bench_fig9_depth_width.cc.o"
  "CMakeFiles/bench_fig9_depth_width.dir/bench_fig9_depth_width.cc.o.d"
  "bench_fig9_depth_width"
  "bench_fig9_depth_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_depth_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
