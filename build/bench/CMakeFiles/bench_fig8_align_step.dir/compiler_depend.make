# Empty compiler generated dependencies file for bench_fig8_align_step.
# This may be replaced when dependencies are built.
