file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_align_step.dir/bench_fig8_align_step.cc.o"
  "CMakeFiles/bench_fig8_align_step.dir/bench_fig8_align_step.cc.o.d"
  "bench_fig8_align_step"
  "bench_fig8_align_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_align_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
