file(REMOVE_RECURSE
  "CMakeFiles/cdp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/cdp_bench_common.dir/bench_common.cc.o.d"
  "libcdp_bench_common.a"
  "libcdp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
