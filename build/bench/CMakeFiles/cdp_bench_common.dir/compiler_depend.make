# Empty compiler generated dependencies file for cdp_bench_common.
# This may be replaced when dependencies are built.
