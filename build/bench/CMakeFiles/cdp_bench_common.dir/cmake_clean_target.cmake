file(REMOVE_RECURSE
  "libcdp_bench_common.a"
)
