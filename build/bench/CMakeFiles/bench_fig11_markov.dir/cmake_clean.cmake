file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_markov.dir/bench_fig11_markov.cc.o"
  "CMakeFiles/bench_fig11_markov.dir/bench_fig11_markov.cc.o.d"
  "bench_fig11_markov"
  "bench_fig11_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
