# Empty dependencies file for bench_fig11_markov.
# This may be replaced when dependencies are built.
