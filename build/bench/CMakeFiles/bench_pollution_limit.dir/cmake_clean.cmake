file(REMOVE_RECURSE
  "CMakeFiles/bench_pollution_limit.dir/bench_pollution_limit.cc.o"
  "CMakeFiles/bench_pollution_limit.dir/bench_pollution_limit.cc.o.d"
  "bench_pollution_limit"
  "bench_pollution_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pollution_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
