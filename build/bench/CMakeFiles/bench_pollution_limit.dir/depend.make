# Empty dependencies file for bench_pollution_limit.
# This may be replaced when dependencies are built.
