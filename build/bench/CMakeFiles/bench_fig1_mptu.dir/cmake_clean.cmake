file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mptu.dir/bench_fig1_mptu.cc.o"
  "CMakeFiles/bench_fig1_mptu.dir/bench_fig1_mptu.cc.o.d"
  "bench_fig1_mptu"
  "bench_fig1_mptu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mptu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
