# Empty compiler generated dependencies file for bench_fig1_mptu.
# This may be replaced when dependencies are built.
