file(REMOVE_RECURSE
  "CMakeFiles/bench_tlb_sweep.dir/bench_tlb_sweep.cc.o"
  "CMakeFiles/bench_tlb_sweep.dir/bench_tlb_sweep.cc.o.d"
  "bench_tlb_sweep"
  "bench_tlb_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tlb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
