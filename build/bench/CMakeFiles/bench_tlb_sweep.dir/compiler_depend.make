# Empty compiler generated dependencies file for bench_tlb_sweep.
# This may be replaced when dependencies are built.
