# Empty compiler generated dependencies file for cdp_core.
# This may be replaced when dependencies are built.
