
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_vam.cc" "src/CMakeFiles/cdp_core.dir/core/adaptive_vam.cc.o" "gcc" "src/CMakeFiles/cdp_core.dir/core/adaptive_vam.cc.o.d"
  "/root/repo/src/core/content_prefetcher.cc" "src/CMakeFiles/cdp_core.dir/core/content_prefetcher.cc.o" "gcc" "src/CMakeFiles/cdp_core.dir/core/content_prefetcher.cc.o.d"
  "/root/repo/src/core/vam.cc" "src/CMakeFiles/cdp_core.dir/core/vam.cc.o" "gcc" "src/CMakeFiles/cdp_core.dir/core/vam.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdp_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
