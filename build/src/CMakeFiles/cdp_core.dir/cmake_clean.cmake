file(REMOVE_RECURSE
  "CMakeFiles/cdp_core.dir/core/adaptive_vam.cc.o"
  "CMakeFiles/cdp_core.dir/core/adaptive_vam.cc.o.d"
  "CMakeFiles/cdp_core.dir/core/content_prefetcher.cc.o"
  "CMakeFiles/cdp_core.dir/core/content_prefetcher.cc.o.d"
  "CMakeFiles/cdp_core.dir/core/vam.cc.o"
  "CMakeFiles/cdp_core.dir/core/vam.cc.o.d"
  "libcdp_core.a"
  "libcdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
