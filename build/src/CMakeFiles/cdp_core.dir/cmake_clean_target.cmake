file(REMOVE_RECURSE
  "libcdp_core.a"
)
