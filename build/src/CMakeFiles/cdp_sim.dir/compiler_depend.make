# Empty compiler generated dependencies file for cdp_sim.
# This may be replaced when dependencies are built.
