file(REMOVE_RECURSE
  "libcdp_sim.a"
)
