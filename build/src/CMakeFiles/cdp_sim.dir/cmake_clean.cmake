file(REMOVE_RECURSE
  "CMakeFiles/cdp_sim.dir/sim/config.cc.o"
  "CMakeFiles/cdp_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/cdp_sim.dir/sim/memory_system.cc.o"
  "CMakeFiles/cdp_sim.dir/sim/memory_system.cc.o.d"
  "CMakeFiles/cdp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/cdp_sim.dir/sim/simulator.cc.o.d"
  "libcdp_sim.a"
  "libcdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
