
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/gshare.cc" "src/CMakeFiles/cdp_cpu.dir/cpu/gshare.cc.o" "gcc" "src/CMakeFiles/cdp_cpu.dir/cpu/gshare.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/CMakeFiles/cdp_cpu.dir/cpu/ooo_core.cc.o" "gcc" "src/CMakeFiles/cdp_cpu.dir/cpu/ooo_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
