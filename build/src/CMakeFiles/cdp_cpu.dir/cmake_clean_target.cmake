file(REMOVE_RECURSE
  "libcdp_cpu.a"
)
