file(REMOVE_RECURSE
  "CMakeFiles/cdp_cpu.dir/cpu/gshare.cc.o"
  "CMakeFiles/cdp_cpu.dir/cpu/gshare.cc.o.d"
  "CMakeFiles/cdp_cpu.dir/cpu/ooo_core.cc.o"
  "CMakeFiles/cdp_cpu.dir/cpu/ooo_core.cc.o.d"
  "libcdp_cpu.a"
  "libcdp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
