# Empty dependencies file for cdp_cpu.
# This may be replaced when dependencies are built.
