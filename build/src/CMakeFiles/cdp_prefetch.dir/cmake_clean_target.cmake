file(REMOVE_RECURSE
  "libcdp_prefetch.a"
)
