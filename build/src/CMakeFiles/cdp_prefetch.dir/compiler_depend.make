# Empty compiler generated dependencies file for cdp_prefetch.
# This may be replaced when dependencies are built.
