
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/markov_prefetcher.cc" "src/CMakeFiles/cdp_prefetch.dir/prefetch/markov_prefetcher.cc.o" "gcc" "src/CMakeFiles/cdp_prefetch.dir/prefetch/markov_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/nextline_prefetcher.cc" "src/CMakeFiles/cdp_prefetch.dir/prefetch/nextline_prefetcher.cc.o" "gcc" "src/CMakeFiles/cdp_prefetch.dir/prefetch/nextline_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stride_prefetcher.cc" "src/CMakeFiles/cdp_prefetch.dir/prefetch/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/cdp_prefetch.dir/prefetch/stride_prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdp_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
