file(REMOVE_RECURSE
  "CMakeFiles/cdp_prefetch.dir/prefetch/markov_prefetcher.cc.o"
  "CMakeFiles/cdp_prefetch.dir/prefetch/markov_prefetcher.cc.o.d"
  "CMakeFiles/cdp_prefetch.dir/prefetch/nextline_prefetcher.cc.o"
  "CMakeFiles/cdp_prefetch.dir/prefetch/nextline_prefetcher.cc.o.d"
  "CMakeFiles/cdp_prefetch.dir/prefetch/stride_prefetcher.cc.o"
  "CMakeFiles/cdp_prefetch.dir/prefetch/stride_prefetcher.cc.o.d"
  "libcdp_prefetch.a"
  "libcdp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
