file(REMOVE_RECURSE
  "libcdp_trace.a"
)
