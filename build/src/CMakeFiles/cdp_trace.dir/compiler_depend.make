# Empty compiler generated dependencies file for cdp_trace.
# This may be replaced when dependencies are built.
