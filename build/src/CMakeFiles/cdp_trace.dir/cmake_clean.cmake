file(REMOVE_RECURSE
  "CMakeFiles/cdp_trace.dir/trace/trace.cc.o"
  "CMakeFiles/cdp_trace.dir/trace/trace.cc.o.d"
  "libcdp_trace.a"
  "libcdp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
