file(REMOVE_RECURSE
  "libcdp_vm.a"
)
