file(REMOVE_RECURSE
  "CMakeFiles/cdp_vm.dir/vm/page_table.cc.o"
  "CMakeFiles/cdp_vm.dir/vm/page_table.cc.o.d"
  "CMakeFiles/cdp_vm.dir/vm/page_walker.cc.o"
  "CMakeFiles/cdp_vm.dir/vm/page_walker.cc.o.d"
  "CMakeFiles/cdp_vm.dir/vm/tlb.cc.o"
  "CMakeFiles/cdp_vm.dir/vm/tlb.cc.o.d"
  "libcdp_vm.a"
  "libcdp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
