# Empty compiler generated dependencies file for cdp_vm.
# This may be replaced when dependencies are built.
