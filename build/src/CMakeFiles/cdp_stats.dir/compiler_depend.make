# Empty compiler generated dependencies file for cdp_stats.
# This may be replaced when dependencies are built.
