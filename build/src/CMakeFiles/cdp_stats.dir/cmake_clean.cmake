file(REMOVE_RECURSE
  "CMakeFiles/cdp_stats.dir/stats/stat.cc.o"
  "CMakeFiles/cdp_stats.dir/stats/stat.cc.o.d"
  "libcdp_stats.a"
  "libcdp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
