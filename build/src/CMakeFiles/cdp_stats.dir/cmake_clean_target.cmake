file(REMOVE_RECURSE
  "libcdp_stats.a"
)
