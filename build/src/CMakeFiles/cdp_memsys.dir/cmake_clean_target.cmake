file(REMOVE_RECURSE
  "libcdp_memsys.a"
)
