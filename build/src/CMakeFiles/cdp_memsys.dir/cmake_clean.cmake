file(REMOVE_RECURSE
  "CMakeFiles/cdp_memsys.dir/memsys/bus.cc.o"
  "CMakeFiles/cdp_memsys.dir/memsys/bus.cc.o.d"
  "CMakeFiles/cdp_memsys.dir/memsys/cache.cc.o"
  "CMakeFiles/cdp_memsys.dir/memsys/cache.cc.o.d"
  "CMakeFiles/cdp_memsys.dir/memsys/mshr.cc.o"
  "CMakeFiles/cdp_memsys.dir/memsys/mshr.cc.o.d"
  "CMakeFiles/cdp_memsys.dir/memsys/queued_arbiter.cc.o"
  "CMakeFiles/cdp_memsys.dir/memsys/queued_arbiter.cc.o.d"
  "libcdp_memsys.a"
  "libcdp_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
