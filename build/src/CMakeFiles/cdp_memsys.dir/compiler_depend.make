# Empty compiler generated dependencies file for cdp_memsys.
# This may be replaced when dependencies are built.
