file(REMOVE_RECURSE
  "CMakeFiles/cdp_workloads.dir/workloads/builders.cc.o"
  "CMakeFiles/cdp_workloads.dir/workloads/builders.cc.o.d"
  "CMakeFiles/cdp_workloads.dir/workloads/generators.cc.o"
  "CMakeFiles/cdp_workloads.dir/workloads/generators.cc.o.d"
  "CMakeFiles/cdp_workloads.dir/workloads/heap_allocator.cc.o"
  "CMakeFiles/cdp_workloads.dir/workloads/heap_allocator.cc.o.d"
  "CMakeFiles/cdp_workloads.dir/workloads/suite.cc.o"
  "CMakeFiles/cdp_workloads.dir/workloads/suite.cc.o.d"
  "libcdp_workloads.a"
  "libcdp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
