# Empty compiler generated dependencies file for cdp_workloads.
# This may be replaced when dependencies are built.
