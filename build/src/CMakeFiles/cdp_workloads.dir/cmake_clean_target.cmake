file(REMOVE_RECURSE
  "libcdp_workloads.a"
)
