file(REMOVE_RECURSE
  "CMakeFiles/cdp_mem.dir/mem/backing_store.cc.o"
  "CMakeFiles/cdp_mem.dir/mem/backing_store.cc.o.d"
  "CMakeFiles/cdp_mem.dir/mem/frame_allocator.cc.o"
  "CMakeFiles/cdp_mem.dir/mem/frame_allocator.cc.o.d"
  "libcdp_mem.a"
  "libcdp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
