# Empty compiler generated dependencies file for cdp_mem.
# This may be replaced when dependencies are built.
