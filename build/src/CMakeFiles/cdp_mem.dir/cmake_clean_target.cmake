file(REMOVE_RECURSE
  "libcdp_mem.a"
)
