/**
 * @file
 * Tuning walkthrough for the virtual-address-matching predictor
 * (Sections 3.3 and 4.1 of the paper).
 *
 * Classifies a handful of illustrative 32-bit values against a heap
 * trigger address under several compare/filter/align settings, then
 * runs a miniature coverage/accuracy sweep on one workload so you can
 * watch the Figure 7 trade-off emerge.
 *
 * Usage: tuning_heuristics [key=value ...]
 */

#include <cstdio>

#include "core/vam.hh"
#include "sim/simulator.hh"

using namespace cdp;

namespace
{

const char *
verdictName(VamVerdict v)
{
    switch (v) {
      case VamVerdict::Candidate: return "CANDIDATE";
      case VamVerdict::Misaligned: return "misaligned";
      case VamVerdict::CompareMismatch: return "compare-mismatch";
      case VamVerdict::FilteredZero: return "filtered (zeros)";
      case VamVerdict::FilteredOne: return "filtered (ones)";
    }
    return "?";
}

void
classifyTable(const VamConfig &cfg)
{
    Vam vam(cfg);
    // The filter-bit cases only arise when the *trigger* also lives
    // in the all-zeros / all-ones region, so each example carries
    // its own effective address.
    struct Example
    {
        std::uint32_t value;
        Addr trigger;
        const char *what;
    } examples[] = {
        {0x10345678, 0x10203048, "heap pointer, same region"},
        {0x20345678, 0x10203048, "pointer into another region"},
        {0x10345679, 0x10203048, "odd (misaligned) value"},
        {0x0000002a, 0x00003048, "the integer 42 (low-region EA)"},
        {0x00500000, 0x00003048, "low pointer w/ filter bits set"},
        {0xfffffffe, 0xffe00048, "the integer -2 (high-region EA)"},
        {0xff4ff000, 0xffe00048, "high (stack-like) pointer"},
        {0x3f8ccccd, 0x10203048, "the float 1.1f"},
    };
    std::printf("VAM %s:\n", cfg.label().c_str());
    for (const auto &e : examples) {
        std::printf("  0x%08x vs EA 0x%08x  %-33s -> %s\n", e.value,
                    e.trigger, e.what,
                    verdictName(vam.classify(e.value, e.trigger)));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        SimConfig base;
        base.parseArgs(argc, argv);
        base.workload = "verilog-gate";
        base.scaleRunLength(0.5);

        std::printf("== part 1: how VAM classifies words ==\n\n");
        classifyTable(VamConfig{8, 4, 1, 2});  // the paper's choice
        classifyTable(VamConfig{12, 4, 1, 2}); // stricter compare
        classifyTable(VamConfig{8, 0, 1, 2});  // no filter bits

        std::printf("== part 2: the Figure 7 trade-off on %s ==\n\n",
                    base.workload.c_str());
        // Misses without any prefetching (coverage denominator).
        SimConfig nopf = base;
        nopf.cdp.enabled = false;
        nopf.stride.enabled = false;
        Simulator base_sim(nopf);
        const std::uint64_t base_misses =
            base_sim.run().mem.l2DemandMisses;

        std::printf("%-8s %12s %12s %12s\n", "config", "issued",
                    "coverage", "accuracy");
        for (unsigned cb : {8u, 9u, 10u, 11u, 12u}) {
            SimConfig c = base;
            c.cdp.vam.compareBits = cb;
            Simulator sim(c);
            const RunResult r = sim.run();
            const double cov =
                base_misses ? static_cast<double>(r.mem.cdpUseful) /
                                  base_misses
                            : 0.0;
            const double acc =
                r.mem.cdpIssued ? static_cast<double>(r.mem.cdpUseful) /
                                      r.mem.cdpIssued
                                : 0.0;
            std::printf("%2u.4     %12llu %11.1f%% %11.1f%%\n", cb,
                        static_cast<unsigned long long>(r.mem.cdpIssued),
                        cov * 100.0, acc * 100.0);
        }
        std::printf("\nmore compare bits -> fewer (but more accurate)"
                    " candidates:\nthe prefetchable region halves "
                    "with every added bit.\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
