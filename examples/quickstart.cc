/**
 * @file
 * Quickstart: run one benchmark twice -- stride-only baseline versus
 * stride + content-directed prefetcher -- and print the speedup.
 *
 * Usage:
 *   quickstart [key=value ...]
 * e.g.
 *   quickstart workload=tpcc-2 measure_uops=500000 cdp.depth=5
 */

#include <cstdio>
#include <exception>

#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace cdp;
    try {
        SimConfig base;
        base.parseArgs(argc, argv);
        base.cdp.enabled = false;

        SimConfig with_cdp = base;
        with_cdp.cdp.enabled = true;

        std::printf("== config ==\n%s\n\n", with_cdp.summary().c_str());

        std::printf("running baseline (stride prefetcher only)...\n");
        Simulator baseline(base);
        const RunResult b = baseline.run();

        std::printf("running stride + content prefetcher...\n\n");
        Simulator cdp_sim(with_cdp);
        const RunResult c = cdp_sim.run();

        std::printf("%-26s %14s %14s\n", "", "baseline", "with CDP");
        std::printf("%-26s %14.4f %14.4f\n", "IPC", b.ipc, c.ipc);
        std::printf("%-26s %14.3f %14.3f\n", "L2 MPTU", b.mptu(),
                    c.mptu());
        std::printf("%-26s %14llu %14llu\n", "L2 demand misses",
                    static_cast<unsigned long long>(b.mem.l2DemandMisses),
                    static_cast<unsigned long long>(c.mem.l2DemandMisses));
        std::printf("%-26s %14s %14llu\n", "content pf issued", "-",
                    static_cast<unsigned long long>(c.mem.cdpIssued));
        std::printf("%-26s %14s %14llu\n", "content pf useful", "-",
                    static_cast<unsigned long long>(c.mem.cdpUseful));
        std::printf("%-26s %14s %14llu\n", "full masks (CDP)", "-",
                    static_cast<unsigned long long>(c.mem.maskFullCdp));
        std::printf("%-26s %14s %14llu\n", "partial masks (CDP)", "-",
                    static_cast<unsigned long long>(c.mem.maskPartialCdp));
        std::printf("\ndrop/flow counters (CDP run):\n");
        const auto &m = c.mem;
        auto P = [](const char *k, std::uint64_t v) {
            std::printf("  %-24s %12llu\n", k,
                        static_cast<unsigned long long>(v));
        };
        P("pfDropL2Hit", m.pfDropL2Hit);
        P("pfDropInflight", m.pfDropInflight);
        P("pfDropQueued", m.pfDropQueued);
        P("pfDropBusFull", m.pfDropBusFull);
        P("pfDropUnmapped", m.pfDropUnmapped);
        P("pfDropArbiter", m.pfDropArbiter);
        P("promotions", m.promotions);
        P("rescans", m.rescans);
        P("prefetchWalks", m.prefetchWalks);
        P("demandWalks", m.demandWalks);
        P("strideIssued", m.strideIssued);
        P("strideUseful", m.strideUseful);
        P("evictedUnused", m.prefetchEvictedUnused);
        std::printf("\nspeedup over stride-only baseline: %.2f%%\n",
                    (c.speedupOver(b) - 1.0) * 100.0);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
