/**
 * @file
 * Section 5 in miniature: the stateless content prefetcher versus the
 * 1-history Markov prefetcher on a single workload, including the
 * Markov prefetcher's defining weakness — it must *train* on a miss
 * sequence before it can predict it, while the content prefetcher
 * works on the very first traversal.
 *
 * Usage: markov_compare [key=value ...]
 */

#include <cstdio>

#include "sim/simulator.hh"

using namespace cdp;

namespace
{

RunResult
run(SimConfig c)
{
    Simulator sim(c);
    return sim.run();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        SimConfig base;
        base.parseArgs(argc, argv);
        if (base.workload == SimConfig{}.workload)
            base.workload = "tpcc-2";
        base.cdp.enabled = false;
        base.scaleRunLength(3.0); // give the Markov STAB revisits

        std::printf("workload: %s\n\n", base.workload.c_str());

        const RunResult stride_only = run(base);

        SimConfig m18 = base;
        m18.markov.enabled = true;
        m18.markov.stabBytes = 128 * 1024;
        m18.mem.l2Bytes = 896 * 1024;
        m18.mem.l2Ways = 7;
        const RunResult markov_18 = run(m18);

        SimConfig mbig = base;
        mbig.markov.enabled = true;
        mbig.markov.stabBytes = 0;
        const RunResult markov_big = run(mbig);

        SimConfig content = base;
        content.cdp.enabled = true;
        const RunResult cdp_run = run(content);

        auto row = [&](const char *name, const RunResult &r,
                       const char *note) {
            std::printf("%-14s ipc %7.4f  speedup %+7.2f%%  misses "
                        "%8llu  %s\n",
                        name, r.ipc,
                        (r.speedupOver(stride_only) - 1.0) * 100.0,
                        static_cast<unsigned long long>(
                            r.mem.l2DemandMisses),
                        note);
        };
        row("stride-only", stride_only, "(baseline)");
        row("markov 1/8", markov_18,
            "(STAB carved out of the UL2: Table 3)");
        row("markov big", markov_big, "(unbounded STAB upper bound)");
        row("content", cdp_run, "(stateless, no training)");

        std::printf("\nwhy the content prefetcher wins: the Markov "
                    "STAB can only predict\nmiss successions it has "
                    "already observed, so every first traversal "
                    "is\nunprefetchable for it; the content "
                    "prefetcher reads the pointers out\nof the fill "
                    "data and needs no history at all "
                    "(Section 5).\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
