/**
 * @file
 * Focused pointer-chasing scenario: one large linked structure, one
 * traversal loop. Shows the content prefetcher's chaining and path
 * reinforcement on the cleanest possible victim, plus a knob sweep.
 *
 * Usage: pointer_chasing [key=value ...]   (same keys as quickstart)
 */

#include <cstdio>
#include <exception>

#include "sim/config.hh"
#include "sim/memory_system.hh"
#include "sim/simulator.hh"
#include "workloads/builders.hh"
#include "workloads/generators.hh"

using namespace cdp;

namespace
{

/** A Simulator-like wrapper around a single hand-built list. */
struct ChaseRig
{
    SimConfig cfg;
    StatGroup stats;
    BackingStore store;
    FrameAllocator frames{0, 48 * 1024, true, 42};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    Rng rng{7};
    std::unique_ptr<ListTraversalGen> gen;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<OooCore> core;

    explicit ChaseRig(const SimConfig &c, std::uint32_t nodes,
                      std::uint32_t node_bytes, std::uint32_t run_len,
                      unsigned alu_per_node)
        : cfg(c)
    {
        BuiltList list = buildLinkedList(heap, nodes, node_bytes, 8,
                                         run_len, rng);
        WalkOptions w;
        w.aluPerNode = alu_per_node;
        w.payloadLoads = 2;
        gen = std::make_unique<ListTraversalGen>(heap, std::move(list),
                                                 0x1000, 0, w, 99);
        mem = std::make_unique<MemorySystem>(cfg, store, pt, &stats);
        core = std::make_unique<OooCore>(cfg.core, *gen, *mem, &stats);
    }
};

void
report(const char *label, ChaseRig &rig, std::uint64_t uops)
{
    rig.core->run(uops / 5); // warm
    rig.stats.resetAll();
    rig.mem->resetCounters();
    rig.core->resetMeasurement();
    const Cycle cycles = rig.core->run(uops);
    const auto &m = rig.mem->counters();
    std::printf("%-28s ipc %.4f  misses %8llu  cpf(issued %llu, "
                "full %llu, part %llu)  rescans %llu\n",
                label, static_cast<double>(uops) / cycles,
                static_cast<unsigned long long>(m.l2DemandMisses),
                static_cast<unsigned long long>(m.cdpIssued),
                static_cast<unsigned long long>(m.maskFullCdp),
                static_cast<unsigned long long>(m.maskPartialCdp),
                static_cast<unsigned long long>(m.rescans));
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        SimConfig base;
        base.parseArgs(argc, argv);
        const std::uint64_t uops = base.measureUops;
        const std::uint32_t nodes = 60'000;
        const std::uint32_t node_bytes = 128;

        std::printf("pointer chase: %u nodes x %u B, scattered heap "
                    "(run length 1)\n\n",
                    nodes, node_bytes);
        std::printf(
            "The chain prefetcher and the demand chase both wait on\n"
            "the same fills, so on a bare chase neither can lead; the\n"
            "prefetcher's run-ahead is harvested from the compute\n"
            "BETWEEN pointer hops (Section 1: pointer codes\n"
            "'traditionally do not provide sufficient computational\n"
            "work for masking the prefetch latency' -- chaining plus\n"
            "reinforcement supplies it). Sweep the per-node work:\n\n");
        // A fully scattered chase has no spatial locality for the
        // next-line width to exploit; chain-only (p0.n0) isolates
        // the paper's recursion + reinforcement mechanisms.
        base.cdp.nextLines = 0;
        for (unsigned work : {4u, 60u, 200u}) {
            std::printf("-- %u compute uops per node --\n", work);
            {
                SimConfig c = base;
                c.cdp.enabled = false;
                ChaseRig rig(c, nodes, node_bytes, 1, work);
                report("stride only", rig, uops);
            }
            {
                SimConfig c = base;
                c.cdp.enabled = true;
                c.cdp.reinforce = false;
                ChaseRig rig(c, nodes, node_bytes, 1, work);
                report("cdp, no reinforcement", rig, uops);
            }
            {
                SimConfig c = base;
                c.cdp.enabled = true;
                ChaseRig rig(c, nodes, node_bytes, 1, work);
                report("cdp + reinforcement", rig, uops);
            }
            std::printf("\n");
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
