/**
 * @file
 * Capture-and-replay walkthrough: records a workload's uop stream to
 * a LIT-style trace file, replays it through a fresh simulation, and
 * verifies the replay is cycle-exact — the property that makes traces
 * useful for sharing workloads and bisecting timing changes.
 *
 * Usage: trace_replay [key=value ...]
 */

#include <cstdio>
#include <exception>

#include "sim/memory_system.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

using namespace cdp;

int
main(int argc, char **argv)
{
    try {
        SimConfig cfg;
        cfg.parseArgs(argc, argv);
        cfg.scaleRunLength(0.25);
        const std::string path = "/tmp/cdp_example.cdpt";
        const std::uint64_t uops = cfg.warmupUops + cfg.measureUops;

        // Phase 1: run the generated workload, capturing its stream.
        // (Capture wraps the simulator's own source; the timing run
        // is the recording run.)
        std::printf("capturing %llu uops of '%s' to %s ...\n",
                    static_cast<unsigned long long>(uops),
                    cfg.workload.c_str(), path.c_str());

        Cycle recorded_cycles = 0;
        {
            Simulator sim(cfg);
            CapturingSource cap(sim.workload(), path,
                                cfg.workload + "/seed" +
                                    std::to_string(cfg.workloadSeed));
            // Drive a fresh core+memory from the capturing wrapper so
            // the trace holds exactly the uops a full run consumes.
            StatGroup stats;
            MemorySystem mem2(cfg, sim.heap().backingStore(),
                              sim.heap().pageTable(), &stats);
            OooCore core2(cfg.core, cap, mem2, &stats);
            recorded_cycles = core2.run(uops);
            cap.finish();
            std::printf("captured %llu uops, run took %llu cycles\n",
                        static_cast<unsigned long long>(cap.captured()),
                        static_cast<unsigned long long>(
                            recorded_cycles));
        }

        // Phase 2: replay the trace against an identical machine and
        // heap image (same workload spec + seed rebuilds the bytes).
        std::printf("replaying ...\n");
        Cycle replayed_cycles = 0;
        {
            Simulator rebuild(cfg); // rebuilds the identical heap
            TraceSource replay(path);
            StatGroup stats;
            MemorySystem mem2(cfg, rebuild.heap().backingStore(),
                              rebuild.heap().pageTable(), &stats);
            OooCore core2(cfg.core, replay, mem2, &stats);
            replayed_cycles = core2.run(uops);
            std::printf("replayed run took %llu cycles (source: %s)\n",
                        static_cast<unsigned long long>(
                            replayed_cycles),
                        replay.name());
        }

        if (recorded_cycles == replayed_cycles) {
            std::printf("\nOK: replay is cycle-exact (%llu cycles)\n",
                        static_cast<unsigned long long>(
                            recorded_cycles));
            std::remove(path.c_str());
            return 0;
        }
        std::fprintf(stderr, "\nMISMATCH: %llu vs %llu cycles\n",
                     static_cast<unsigned long long>(recorded_cycles),
                     static_cast<unsigned long long>(replayed_cycles));
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
